// Application-workload demo: a TPC-C-style NewOrder trace served
// through the workload API — deterministic order entry against a
// three-region key layout (hot district counters, guarded stock
// levels, per-item ordered totals), run twice on the same trace: once
// on static placement and once with the Rebalancer's split-key policy
// carving up the district counters mid-run. Popular items run dry, so
// some orders abort on the stock guard; the workload's conservation
// checker then proves that every abort was clean — for every item,
// stock + ordered == InitialStock, whatever committed.
//
//	go run ./examples/apps -dpus 4 -orders 800 -skew 1.2
package main

import (
	"flag"
	"fmt"
	"log"

	"pimstm/internal/core"
	"pimstm/internal/host"
	"pimstm/internal/workload"
)

// serveOrders replays the workload's trace through a fresh fleet and
// proves the conservation invariant against the served store.
func serveOrders(w workload.Workload, cfg host.ServeConfig) (host.ServeResult, error) {
	trace, err := w.Generate()
	if err != nil {
		return host.ServeResult{}, err
	}
	cfg.Trace = trace
	cfg.Preload = w.Preload()
	cfg.KeepResults = true
	res, err := host.Serve(cfg)
	if err != nil {
		return host.ServeResult{}, err
	}
	if res.Errors > 0 {
		return host.ServeResult{}, fmt.Errorf("%d/%d orders errored", res.Errors, res.Txns)
	}
	if err := w.Check(res.Store.Get, res.Results); err != nil {
		return host.ServeResult{}, err
	}
	return res, nil
}

func main() {
	var (
		dpus      = flag.Int("dpus", 4, "fleet size")
		orders    = flag.Int("orders", 800, "orders to serve")
		rate      = flag.Float64("rate", 2e5, "arrival rate (orders per modeled second)")
		districts = flag.Int("districts", 4, "hot district counters")
		items     = flag.Int("items", 32, "catalog size")
		stock     = flag.Uint64("stock", 250, "initial stock per item")
		skew      = flag.Float64("skew", 1.1, "item-popularity Zipf exponent")
		batch     = flag.Int("batch", 48, "MaxBatch in ops")
		seed      = flag.Uint64("seed", 12, "trace seed")
	)
	flag.Parse()

	cfg := workload.NewOrderConfig{
		Txns: *orders, Rate: *rate, Seed: *seed,
		Districts: *districts, Items: *items, InitialStock: *stock, ItemZipfS: *skew,
	}
	fmt.Printf("NewOrder — %d orders, %d districts, %d items × %d stock, zipf %.2f, %d DPUs\n",
		*orders, *districts, *items, *stock, *skew, *dpus)

	report := func(name string, res host.ServeResult) {
		fmt.Printf("%-7s %4d batches, %4d committed / %3d stock-dry aborts (%d guard aborts), p99 %.3f ms\n",
			name+":", res.Batches, res.Txns-res.Aborted, res.Aborted, res.Stats.GuardAborts, res.P99*1e3)
		if res.Rebalance.KeysSplit > 0 {
			fmt.Printf("        split policy: %d keys split, %d reconciliations folded the shards back\n",
				res.Rebalance.KeysSplit, res.SplitReconciles)
		}
	}

	// Pass 1: static placement — every district counter lives where the
	// hash put it, so hot districts serialize on their home DPU.
	w, err := workload.NewNewOrder(cfg)
	if err != nil {
		log.Fatal(err)
	}
	static, err := serveOrders(w, host.ServeConfig{
		Map: host.PartitionedMapConfig{
			DPUs: *dpus, Tasklets: 4, STM: core.Config{Algorithm: core.NOrec},
			Mode: host.Pipelined,
		},
		Submit: host.SubmitterConfig{MaxBatch: *batch},
	})
	if err != nil {
		log.Fatal(err)
	}
	report("static", static)

	// Pass 2: same trace, but a Directory-backed fleet with the
	// split-key policy — the add-only district counters shard across
	// the fleet and fold back on reads.
	w2, err := workload.NewNewOrder(cfg)
	if err != nil {
		log.Fatal(err)
	}
	split, err := serveOrders(w2, host.ServeConfig{
		Map: host.PartitionedMapConfig{
			DPUs: *dpus, Tasklets: 4, STM: core.Config{Algorithm: core.NOrec},
			Mode: host.Pipelined, Placement: host.NewDirectory(*dpus),
		},
		Submit: host.SubmitterConfig{MaxBatch: *batch},
		Rebalance: &host.RebalancerConfig{
			WindowBatches: 3, TopK: 4, MinKeyOps: 8, SplitMinAddShare: 0.5,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	report("split", split)

	fmt.Printf("invariant: stock + ordered == %d held for all %d items under both placements\n",
		*stock, *items)
}
