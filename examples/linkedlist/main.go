// Linked-list shoot-out: the paper's concurrent sorted-set benchmark
// run across all seven STM algorithms on one DPU, printing the
// throughput/abort comparison of Fig 4c-4d in miniature.
//
//	go run ./examples/linkedlist            # low contention (90% lookups)
//	go run ./examples/linkedlist -hc        # high contention (50% lookups)
//	go run ./examples/linkedlist -meta wram
package main

import (
	"flag"
	"fmt"
	"log"

	"pimstm"
	"pimstm/internal/core"
	"pimstm/internal/dpu"
	"pimstm/internal/workloads"
)

func main() {
	var (
		hc       = flag.Bool("hc", false, "high-contention mix (50% contains)")
		meta     = flag.String("meta", "mram", "metadata tier: mram|wram")
		tasklets = flag.Int("tasklets", 8, "tasklets")
		ops      = flag.Int("ops", 100, "operations per tasklet")
	)
	flag.Parse()

	tier := dpu.MRAM
	if *meta == "wram" {
		tier = dpu.WRAM
	}
	mix := "low contention (90% contains)"
	if *hc {
		mix = "high contention (50% contains)"
	}
	fmt.Printf("Transactional sorted linked list — %s, metadata in %v, %d tasklets × %d ops\n\n",
		mix, tier, *tasklets, *ops)
	fmt.Printf("%-12s %14s %12s %10s\n", "STM", "throughput", "aborts", "commits")

	for _, alg := range pimstm.Algorithms() {
		var w *workloads.LinkedList
		if *hc {
			w = workloads.NewLinkedListHC()
		} else {
			w = workloads.NewLinkedListLC()
		}
		w.OpsPerTasklet = *ops

		res, err := workloads.Run(w,
			dpu.Config{MRAMSize: 8 << 20, Seed: 7},
			core.Config{Algorithm: alg, MetaTier: tier},
			*tasklets)
		if err != nil {
			log.Fatal(err)
		}
		// workloads.Run verified sortedness, uniqueness and key range.
		fmt.Printf("%-12v %11.0f tx/s %10.1f%% %10d\n",
			alg, res.ThroughputTxS, res.Stats.AbortRate()*100, res.Stats.Commits)
	}
	fmt.Println("\nPaper's shape (Fig 4c-4d): NOrec leads, Tiny variants close behind,")
	fmt.Println("VR variants trail with markedly higher abort rates (upgrade aborts).")
}
