// Batch-scheduler demo: the same mixed stream of multi-key
// transactions — some confined to one DPU, some spanning two — served
// twice, once through the default FIFO batcher and once through the
// lane scheduler that keeps confined and coordinated transactions in
// separate homogeneous batches. A mixed FIFO batch pays the execute
// round *plus* both coordination rounds, so the confined traffic's
// tail rides the cross-DPU cliff; the lane scheduler closes that gap,
// which the per-lane p99s make visible.
//
//	go run ./examples/sched -dpus 8 -txns 1500 -cross 0.3
//	go run ./examples/sched -dpus 8 -txns 1500 -cross 0.3 -adaptive
package main

import (
	"flag"
	"fmt"
	"log"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

// laneLatencies collects per-transaction commit latencies split by the
// store's own admission classifier.
type laneLatencies struct {
	confined, coordinated []float64
}

// serveWith streams the trace through a fresh store under the given
// scheduler (nil = the default FIFO) and returns the per-lane
// latencies plus the submitter's flush stats.
func serveWith(trace []host.TimedTxn, dpus, keys, batch int, delay float64,
	sched host.Scheduler) (laneLatencies, host.SubmitterStats, float64, error) {
	pm, err := host.NewPartitionedMap(host.PartitionedMapConfig{
		DPUs: dpus, Buckets: 256, Capacity: 4 * keys, Tasklets: 11,
		STM: core.Config{Algorithm: core.NOrec}, Mode: host.Pipelined,
	})
	if err != nil {
		return laneLatencies{}, host.SubmitterStats{}, 0, err
	}
	load := make([]host.Op, keys)
	for k := range load {
		load[k] = host.Op{Kind: host.OpPut, Key: uint64(k), Value: uint64(k)}
	}
	if _, err := pm.ApplyBatch(load); err != nil {
		return laneLatencies{}, host.SubmitterStats{}, 0, err
	}
	base := pm.Stats().WallSeconds

	s := host.NewSubmitter(pm, host.SubmitterConfig{
		MaxBatch: batch, MaxDelaySeconds: delay, Scheduler: sched,
	})
	futs := make([]*host.Future, len(trace))
	lanes := make([]host.Lane, len(trace))
	for i, t := range trace {
		lanes[i] = pm.LaneOf(t.Txn)
		if futs[i], err = s.Submit(t.Txn, t.Arrival); err != nil {
			return laneLatencies{}, host.SubmitterStats{}, 0, err
		}
	}
	if err := s.Close(); err != nil {
		return laneLatencies{}, host.SubmitterStats{}, 0, err
	}
	var ll laneLatencies
	for i, f := range futs {
		res := f.Wait()
		if res.Err != nil {
			return laneLatencies{}, host.SubmitterStats{}, 0, res.Err
		}
		if lanes[i] == host.LaneCoordinated {
			ll.coordinated = append(ll.coordinated, res.LatencySeconds)
		} else {
			ll.confined = append(ll.confined, res.LatencySeconds)
		}
	}
	return ll, s.Stats(), pm.Stats().WallSeconds - base, nil
}

func main() {
	var (
		dpus     = flag.Int("dpus", 8, "fleet size")
		txns     = flag.Int("txns", 1500, "transactions to serve")
		size     = flag.Int("size", 2, "ops per transaction")
		cross    = flag.Float64("cross", 0.3, "fraction of transactions spanning DPUs")
		rate     = flag.Float64("rate", 40000, "open-loop arrival rate (txns per modeled second)")
		reads    = flag.Int("reads", 80, "read percentage")
		keys     = flag.Int("keys", 512, "distinct keys")
		skew     = flag.Float64("skew", 1.2, "Zipf key-popularity exponent")
		batch    = flag.Int("batch", 64, "MaxBatch in ops (confined lane)")
		delayUS  = flag.Float64("delay-us", 300, "MaxDelay (modeled µs, confined lane)")
		seed     = flag.Uint64("seed", 1, "traffic seed")
		adaptive = flag.Bool("adaptive", false, "use the AIMD-adaptive lane scheduler")
	)
	flag.Parse()

	trace, err := host.GenerateTraffic(host.TrafficConfig{
		Ops: *txns, Rate: *rate, ReadPct: *reads, Keyspace: *keys,
		ZipfS: *skew, Seed: *seed, TxnSize: *size, CrossDPU: *cross, DPUs: *dpus,
	})
	if err != nil {
		log.Fatal(err)
	}
	delay := *delayUS * 1e-6
	lanes := host.LaneSchedulerConfig{
		Confined: host.LaneConfig{MaxBatch: *batch, MaxDelaySeconds: delay},
		// Coordination rounds are pure handshake, so the coordinated
		// lane gets double the budget — fewer, fuller windows.
		Coordinated: host.LaneConfig{MaxBatch: 2 * *batch, MaxDelaySeconds: 2 * delay},
	}
	laneSched := func() host.Scheduler { return host.NewLaneScheduler(lanes) }
	schedName := "lane"
	if *adaptive {
		laneSched = func() host.Scheduler {
			return host.NewAdaptiveScheduler(lanes, host.AdaptiveConfig{})
		}
		schedName = "adaptive"
	}

	fmt.Printf("Batch-scheduler shoot-out — %d DPUs, %d %d-op txns, %.0f%% cross-DPU, zipf %.2f\n",
		*dpus, *txns, *size, *cross*100, *skew)

	p99 := func(xs []float64) float64 { return host.Quantile(xs, 0.99) }
	report := func(name string, ll laneLatencies, st host.SubmitterStats, makespan float64) {
		fmt.Printf("%-9s %4d batches (%d confined / %d coordinated lanes), makespan %.3f ms\n",
			name+":", st.Batches, st.ConfinedBatches, st.CoordinatedBatches, makespan*1e3)
		fmt.Printf("          confined    p99 %8.3f ms   (%d txns)\n", p99(ll.confined)*1e3, len(ll.confined))
		if len(ll.coordinated) > 0 {
			fmt.Printf("          coordinated p99 %8.3f ms   (%d txns)\n", p99(ll.coordinated)*1e3, len(ll.coordinated))
		}
	}

	fifoLL, fifoStats, fifoMk, err := serveWith(trace, *dpus, *keys, *batch, delay, nil)
	if err != nil {
		log.Fatal(err)
	}
	report("fifo", fifoLL, fifoStats, fifoMk)

	laneLL, laneStats, laneMk, err := serveWith(trace, *dpus, *keys, *batch, delay, laneSched())
	if err != nil {
		log.Fatal(err)
	}
	report(schedName, laneLL, laneStats, laneMk)

	if g := p99(fifoLL.confined) / p99(laneLL.confined); g > 0 {
		fmt.Printf("confined-lane p99 gain over FIFO: %.2fx — homogeneous batches keep the\n"+
			"confined traffic off the cross-DPU coordination cliff\n", g)
	}
}
