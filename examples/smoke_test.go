// Smoke tests for the example programs: each of the ten demos must
// build and run to completion with a small workload, so API churn in
// the packages they showcase can't silently rot them.
package examples

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot locates the repository root from this file's position.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate smoke_test.go")
	}
	return filepath.Dir(filepath.Dir(file))
}

func TestExamplesRun(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	root := moduleRoot(t)
	cases := []struct {
		name string
		args []string
	}{
		{"quickstart", []string{"-accounts", "8", "-transfers", "20", "-tasklets", "4"}},
		{"linkedlist", []string{"-ops", "10", "-tasklets", "4"}},
		{"labyrinth", []string{"-paths", "4", "-size", "10", "-tasklets", "4"}},
		{"kmeans", []string{"-dpus", "2", "-points", "60", "-k", "2", "-dims", "4", "-rounds", "1"}},
		{"kvstore", []string{"-dpus", "2", "-keys", "50", "-batches", "2"}},
		{"serve", []string{"-dpus", "2", "-ops", "200", "-keys", "64", "-rate", "100000", "-batch", "16"}},
		{"rebalance", []string{"-dpus", "4", "-ops", "7680", "-keys", "2560", "-rate", "1200000", "-batch", "768"}},
		{"txn", []string{"-dpus", "4", "-accounts", "32", "-moves", "12"}},
		{"sched", []string{"-dpus", "4", "-txns", "300", "-keys", "128", "-batch", "32"}},
		{"apps", []string{"-dpus", "4", "-orders", "300", "-items", "16", "-stock", "30"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", append([]string{"run", "./examples/" + tc.name}, tc.args...)...)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", tc.name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s printed nothing", tc.name)
			}
		})
	}
}
