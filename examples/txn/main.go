// Transactional serving demo: clients submit multi-key transactions —
// ordered groups of Ops committed atomically — through the adaptive
// Submitter. A transaction confined to one DPU commits as a native
// PIM-STM transaction inside that DPU's kernel; one spanning DPUs is
// CPU-coordinated through a coalesced snapshot gather and writeback
// scatter in the quiescent window. The demo moves balance between two
// accounts on different DPUs (the cross-DPU read-modify-write of the
// paper's §5 sketch), shows a guarded underflow aborting atomically,
// and reports each transaction's modeled commit latency.
//
//	go run ./examples/txn -dpus 8 -accounts 64 -moves 32
package main

import (
	"flag"
	"fmt"
	"log"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

func main() {
	var (
		dpus     = flag.Int("dpus", 8, "fleet size")
		accounts = flag.Int("accounts", 64, "accounts preloaded with 1000 units each")
		moves    = flag.Int("moves", 32, "transfer transactions to submit")
		stm      = flag.String("stm", "norec", "STM algorithm inside each DPU")
	)
	flag.Parse()

	alg, err := core.ParseAlgorithm(*stm)
	if err != nil {
		log.Fatal(err)
	}
	pm, err := host.NewPartitionedMap(host.PartitionedMapConfig{
		DPUs: *dpus, Buckets: 128, Capacity: 4 * *accounts, Tasklets: 8,
		STM: core.Config{Algorithm: alg},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Preload the accounts in one batch.
	load := make([]host.Op, *accounts)
	for k := range load {
		load[k] = host.Op{Kind: host.OpPut, Key: uint64(k), Value: 1000}
	}
	if _, err := pm.ApplyBatch(load); err != nil {
		log.Fatal(err)
	}

	// Pick a cross-DPU account pair for the showcase transaction.
	from, to := uint64(0), uint64(1)
	for pm.Placement().Owner(to) == pm.Placement().Owner(from) && int(to) < *accounts-1 {
		to++
	}

	s := host.NewSubmitter(pm, host.SubmitterConfig{MaxBatch: 16, MaxDelaySeconds: 500e-6})
	clock := 0.0
	submit := func(txn host.Txn) *host.Future {
		clock += 50e-6
		f, err := s.Submit(txn, clock)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}

	// The showcase: an atomic cross-DPU read-modify-write — debit one
	// account, credit another on a different DPU, and read the credited
	// balance, all in one transaction.
	showcase := submit(host.NewTxn(
		host.Op{Kind: host.OpSub, Key: from, Value: 250},
		host.Op{Kind: host.OpAdd, Key: to, Value: 250},
		host.Op{Kind: host.OpGet, Key: to},
	))
	// A doomed transfer: the guard aborts the whole transaction, so the
	// credited account must not change either.
	doomed := submit(host.NewTxn(
		host.Op{Kind: host.OpSub, Key: from, Value: 1_000_000},
		host.Op{Kind: host.OpAdd, Key: to, Value: 1_000_000},
	))
	// Background traffic: random transfers between neighbor accounts.
	rng := host.Rand64(42)
	futs := make([]*host.Future, 0, *moves)
	for i := 0; i < *moves; i++ {
		a := rng.Next() % uint64(*accounts)
		b := rng.Next() % uint64(*accounts)
		amount := rng.Next() % 100
		futs = append(futs, submit(host.NewTxn(
			host.Op{Kind: host.OpSub, Key: a, Value: amount},
			host.Op{Kind: host.OpAdd, Key: b, Value: amount},
		)))
	}
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}

	res := showcase.Wait()
	fmt.Printf("Multi-key Txn serving front-end — %d DPUs, %v inside each DPU\n", *dpus, alg)
	fmt.Printf("  cross-DPU transfer %d→%d (owners %d→%d): committed=%v, credited balance %d, commit latency %.3f ms\n",
		from, to, pm.Placement().Owner(from), pm.Placement().Owner(to),
		res.Committed, res.Results[2].Value, res.LatencySeconds*1e3)
	if d := doomed.Wait(); d.Committed {
		fmt.Println("  BUG: the doomed transfer committed")
	} else {
		fmt.Printf("  underflowing transfer aborted atomically (committed=%v)\n", d.Committed)
	}
	committed := 0
	for _, f := range futs {
		if f.Wait().Committed {
			committed++
		}
	}
	fmt.Printf("  background: %d/%d random transfers committed (%d CPU-coordinated of %d txns total)\n",
		committed, len(futs), pm.TxnsCoordinated, pm.TxnsApplied)

	// The invariant every STM demo owes its reader: money is conserved.
	total := uint64(0)
	for k := 0; k < *accounts; k++ {
		v, ok := pm.Get(uint64(k))
		if !ok {
			log.Fatalf("account %d vanished", k)
		}
		total += v
	}
	fmt.Printf("  conservation: %d accounts hold %d units (expected %d)\n",
		*accounts, total, uint64(*accounts)*1000)
	if total != uint64(*accounts)*1000 {
		log.Fatal("balance not conserved")
	}
}
