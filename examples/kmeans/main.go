// Multi-DPU KMeans: the paper's §4.3 flow end to end — the CPU shards
// the input across a fleet of simulated DPUs, each DPU clusters its
// shard with transactional centroid updates (NOrec, metadata in WRAM),
// and the CPU merges the per-DPU accumulators between rounds. The run
// uses exact mode (every DPU simulated), so the printed centroids are
// the true clustering result; the speedup estimate compares against the
// real NOrec CPU baseline measured on this machine.
//
//	go run ./examples/kmeans -dpus 8 -points 500
package main

import (
	"flag"
	"fmt"
	"log"

	"pimstm/internal/host"
)

func main() {
	var (
		dpus   = flag.Int("dpus", 8, "fleet size")
		points = flag.Int("points", 500, "points per DPU")
		k      = flag.Int("k", 4, "clusters")
		dims   = flag.Int("dims", 6, "dimensions")
		rounds = flag.Int("rounds", 3, "clustering rounds")
	)
	flag.Parse()

	cfg := host.KMeansFleetConfig{K: *k, Dims: *dims, PointsPerDPU: *points, Rounds: *rounds}
	res, err := host.RunKMeansFleet(cfg, host.FleetOptions{DPUs: *dpus, Tasklets: 11, Exact: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Multi-DPU KMeans — %d DPUs × %d points, k=%d, %d rounds\n",
		*dpus, *points, *k, *rounds)
	fmt.Printf("  committed transactions: %d (one per point per round)\n", res.Commits)
	fmt.Printf("  DPU compute time:       %.3f ms (slowest DPU per round, summed)\n", res.DPUSeconds*1e3)
	fmt.Printf("  CPU-mediated transfers: %.3f ms\n", res.TransferSeconds*1e3)
	fmt.Printf("  end-to-end PIM time:    %.3f ms\n", res.TotalSeconds*1e3)

	fmt.Printf("  final centroids (16.16 fixed point, first 4 dims):\n")
	for c := 0; c < *k; c++ {
		fmt.Printf("    c%-2d:", c)
		for d := 0; d < min(*dims, 4); d++ {
			fmt.Printf(" %9.1f", float64(int64(res.Centers[c**dims+d]))/65536)
		}
		fmt.Println()
	}

	// Real CPU baseline on this machine (the paper's 4-thread optimum).
	cpuSecs, err := host.KMeansCPUBaseline(*k, *dims, *dpus**points, *rounds, 4, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  CPU baseline (4 threads, this host): %.3f ms\n", cpuSecs*1e3)
	fmt.Printf("  speedup at this fleet size:          %.2fx\n", cpuSecs/res.TotalSeconds)
	fmt.Println("\nGrow -dpus to watch the crossover of Fig 7a: per-DPU work is fixed,")
	fmt.Println("so PIM time stays flat while the CPU baseline grows with the input.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
