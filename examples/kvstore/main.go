// Partitioned key-value store across a fleet of simulated DPUs — the
// future-work direction of the paper's §5: keys are hash-routed to
// owner DPUs, batches execute with transactional tasklet parallelism
// inside each DPU, and cross-DPU atomic transfers are coordinated by
// the CPU in coalesced batches while the fleet is idle.
//
// The store runs on the host.Fleet pipeline: in the default Pipelined
// mode the host streams the next batch down (and the previous results
// up) while the DPUs execute the current one, so most transfer time
// hides behind the kernels; -lockstep shows the serialized baseline.
//
//	go run ./examples/kvstore -dpus 8 -keys 2000
//	go run ./examples/kvstore -dpus 8 -keys 2000 -lockstep
package main

import (
	"flag"
	"fmt"
	"log"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

func main() {
	var (
		dpus     = flag.Int("dpus", 8, "fleet size")
		keys     = flag.Int("keys", 2000, "keys to load")
		batches  = flag.Int("batches", 4, "read batches to pipeline")
		stm      = flag.String("stm", "norec", "STM algorithm inside each DPU")
		lockstep = flag.Bool("lockstep", false, "disable transfer pipelining")
	)
	flag.Parse()

	alg, err := core.ParseAlgorithm(*stm)
	if err != nil {
		log.Fatal(err)
	}
	mode := host.Pipelined
	if *lockstep {
		mode = host.Lockstep
	}
	pm, err := host.NewPartitionedMap(host.PartitionedMapConfig{
		DPUs: *dpus, Buckets: 1024, Capacity: 8192, Tasklets: 11,
		STM: core.Config{Algorithm: alg}, Mode: mode,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Load phase: one batch of puts, routed across the fleet.
	ops := make([]host.Op, *keys)
	for k := range ops {
		ops[k] = host.Op{Kind: host.OpPut, Key: uint64(k), Value: 1000}
	}
	if _, err := pm.ApplyBatch(ops); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Partitioned KV store — %d DPUs, %v inside each DPU, %v transfers\n",
		*dpus, alg, mode)
	fmt.Printf("  loaded %d keys (store size %d)\n", *keys, pm.Len())

	// Read batches, streamed through the pipeline back to back.
	hits := 0
	for b := 0; b < *batches; b++ {
		ops = ops[:0]
		for k := 0; k < 100; k++ {
			ops = append(ops, host.Op{Kind: host.OpGet, Key: uint64(b*100 + k)})
		}
		res, err := pm.ApplyBatch(ops)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range res {
			if r.OK {
				hits++
			}
		}
	}
	fmt.Printf("  %d read batches: %d/%d hits\n", *batches, hits, *batches*100)

	// Cross-DPU atomic transfers: coalesced into one quiescent window
	// instead of one 331 µs CPU-mediated word at a time.
	oks, err := pm.ApplyTransfers([]host.Transfer{
		{From: 1, To: 2, Amount: 250},
		{From: 3, To: 4, Amount: 100},
	})
	if err != nil {
		log.Fatal(err)
	}
	v1, _ := pm.Get(1)
	v2, _ := pm.Get(2)
	fmt.Printf("  coalesced cross-DPU transfers: applied %v; key 1 → %d, key 2 → %d (total conserved: %v)\n",
		oks, v1, v2, v1+v2 == 2000)

	s := pm.Stats()
	fmt.Printf("  modeled time: %.3f ms wall (launch %.3f + quiescent %.3f; transfers %.3f engine-ms)\n",
		s.WallSeconds*1e3, s.LaunchSeconds*1e3, s.QuiescentSeconds*1e3, s.TransferSeconds*1e3)
	fmt.Printf("  lockstep-equivalent: %.3f ms → pipelining gain %.2fx\n",
		s.LockstepSeconds*1e3, s.LockstepSeconds/s.WallSeconds)
}
