// Partitioned key-value store across a fleet of simulated DPUs — the
// future-work direction of the paper's §5: keys are hash-routed to
// owner DPUs, batches execute with transactional tasklet parallelism
// inside each DPU, and cross-DPU atomic transfers are coordinated by
// the CPU while the fleet is idle.
//
//	go run ./examples/kvstore -dpus 8 -keys 2000
package main

import (
	"flag"
	"fmt"
	"log"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

func main() {
	var (
		dpus = flag.Int("dpus", 8, "fleet size")
		keys = flag.Int("keys", 2000, "keys to load")
		stm  = flag.String("stm", "norec", "STM algorithm inside each DPU")
	)
	flag.Parse()

	alg, err := core.ParseAlgorithm(*stm)
	if err != nil {
		log.Fatal(err)
	}
	pm, err := host.NewPartitionedMap(*dpus, 1024, 8192, 11, core.Config{Algorithm: alg})
	if err != nil {
		log.Fatal(err)
	}

	// Load phase: one batch of puts, routed across the fleet.
	ops := make([]host.Op, *keys)
	for k := range ops {
		ops[k] = host.Op{Kind: host.OpPut, Key: uint64(k), Value: 1000}
	}
	if _, err := pm.ApplyBatch(ops); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Partitioned KV store — %d DPUs, %v inside each DPU\n", *dpus, alg)
	fmt.Printf("  loaded %d keys (store size %d), batch time %.3f ms\n",
		*keys, pm.Len(), pm.BatchSeconds*1e3)

	// Mixed batch: reads and deletes.
	ops = ops[:0]
	for k := 0; k < 100; k++ {
		ops = append(ops, host.Op{Kind: host.OpGet, Key: uint64(k)})
	}
	res, err := pm.ApplyBatch(ops)
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, r := range res {
		if r.OK {
			hits++
		}
	}
	fmt.Printf("  read batch: %d/%d hits\n", hits, len(ops))

	// Cross-DPU atomic transfer: the CPU-coordinated escape hatch.
	a, b := uint64(1), uint64(2)
	ok, err := pm.TransferBetween(a, b, 250)
	if err != nil || !ok {
		log.Fatalf("transfer failed: %v %v", ok, err)
	}
	va, _ := pm.Get(a)
	vb, _ := pm.Get(b)
	fmt.Printf("  cross-DPU transfer of 250: key %d → %d, key %d → %d (total conserved: %v)\n",
		a, va, b, vb, va+vb == 2000)
	fmt.Printf("  cumulative modeled time: %.3f ms (incl. 331 µs per CPU-mediated word)\n",
		pm.BatchSeconds*1e3)
}
