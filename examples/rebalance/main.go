// Skew-adaptive placement demo: the same Zipf-skewed open-loop traffic
// is served twice — once routed by the static `hash % N` placement,
// once by the Directory placement with the hot-key Rebalancer in the
// loop. The rebalancer watches per-DPU load over a sliding window of
// batches and, between quiescent windows, promotes read-mostly hot keys
// to read replicas (their gets then round-robin over the copies) and
// migrates write-heavy hot keys off the hottest DPU; every promotion
// and migration is charged through the modeled transfer pipeline.
//
//	go run ./examples/rebalance -dpus 8 -skew 1.2
//	go run ./examples/rebalance -dpus 8 -skew 0     # hysteresis: no churn
package main

import (
	"flag"
	"fmt"
	"log"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

func main() {
	var (
		dpus  = flag.Int("dpus", 8, "fleet size")
		ops   = flag.Int("ops", 38400, "operations to serve")
		rate  = flag.Float64("rate", 3e6, "open-loop arrival rate (ops per modeled second)")
		reads = flag.Int("reads", 99, "read percentage")
		keys  = flag.Int("keys", 10240, "distinct keys")
		skew  = flag.Float64("skew", 1.2, "Zipf key-popularity exponent (0 = uniform)")
		batch = flag.Int("batch", 2560, "submitter MaxBatch")
		seed  = flag.Uint64("seed", 1, "traffic seed")
	)
	flag.Parse()

	serve := func(placement host.Placement, reb *host.RebalancerConfig) host.ServeResult {
		res, err := host.Serve(host.ServeConfig{
			Map: host.PartitionedMapConfig{
				DPUs: *dpus, Tasklets: 11,
				STM:       core.Config{Algorithm: core.NOrec},
				Mode:      host.Pipelined,
				Placement: placement,
			},
			Submit: host.SubmitterConfig{MaxBatch: *batch, MaxDelaySeconds: 2e-3},
			Traffic: host.TrafficConfig{
				Ops: *ops, Rate: *rate, ReadPct: *reads,
				Keyspace: *keys, ZipfS: *skew, Seed: *seed,
			},
			Rebalance: reb,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("Skew-adaptive placement — %d DPUs, %d ops at %.0f ops/s, %d%% reads, zipf %.2f over %d keys\n",
		*dpus, *ops, *rate, *reads, *skew, *keys)

	static := serve(nil, nil)
	fmt.Printf("  static hash:          %8.0f ops/s, p50 %7.3f ms, p99 %7.3f ms\n",
		static.OpsPerSecond, static.P50*1e3, static.P99*1e3)

	rebCfg := host.KernelBoundServingRebalance(3)
	adaptive := serve(host.NewDirectory(*dpus), &rebCfg)
	fmt.Printf("  directory+rebalance:  %8.0f ops/s, p50 %7.3f ms, p99 %7.3f ms\n",
		adaptive.OpsPerSecond, adaptive.P50*1e3, adaptive.P99*1e3)
	fmt.Printf("  control plane: %d windows evaluated, %d acted; %d keys replicated, %d migrated\n",
		adaptive.Rebalance.WindowsEvaluated, adaptive.Rebalance.WindowsActed,
		adaptive.Rebalance.KeysReplicated, adaptive.Rebalance.KeysMigrated)
	if static.P99 > 0 && adaptive.P99 > 0 {
		fmt.Printf("  gains: %.2fx ops/s, %.2fx p99\n",
			adaptive.OpsPerSecond/static.OpsPerSecond, static.P99/adaptive.P99)
	}
}
