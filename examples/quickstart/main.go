// Quickstart: concurrent bank-account transfers on one simulated DPU.
//
// Eight tasklets transfer money between accounts stored in MRAM while
// an auditor tasklet keeps verifying that the total balance is
// conserved — the textbook atomicity-and-isolation demo, here running
// on the PIM-STM public API. Try different algorithms:
//
//	go run ./examples/quickstart -stm norec
//	go run ./examples/quickstart -stm "Tiny ETLWB"
//	go run ./examples/quickstart -stm "VR CTLWB" -meta wram
package main

import (
	"flag"
	"fmt"
	"log"

	"pimstm"
)

func main() {
	var (
		stm      = flag.String("stm", "norec", "STM algorithm (see pimstm.Algorithms)")
		meta     = flag.String("meta", "mram", "metadata tier: mram|wram")
		accounts = flag.Int("accounts", 32, "number of accounts")
		transfer = flag.Int("transfers", 200, "transfers per tasklet")
		tasklets = flag.Int("tasklets", 8, "worker tasklets (1..23)")
	)
	flag.Parse()

	alg, err := pimstm.ParseAlgorithm(*stm)
	if err != nil {
		log.Fatal(err)
	}
	tier := pimstm.MRAM
	if *meta == "wram" {
		tier = pimstm.WRAM
	}

	d := pimstm.NewDPU(pimstm.DPUConfig{MRAMSize: 1 << 20, Seed: 42})
	tm, err := pimstm.NewTM(d, pimstm.Config{Algorithm: alg, MetaTier: tier})
	if err != nil {
		log.Fatal(err)
	}

	const initial = 1000
	base := d.MustAlloc(pimstm.MRAM, *accounts*8, 8)
	account := func(i int) pimstm.Addr { return base + pimstm.Addr(i*8) }
	for i := 0; i < *accounts; i++ {
		d.HostWrite64(account(i), initial)
	}

	want := uint64(*accounts * initial)
	txs := make([]*pimstm.Tx, *tasklets+1)
	progs := make([]func(*pimstm.Tasklet), *tasklets+1)
	for i := 0; i < *tasklets; i++ {
		progs[i] = func(t *pimstm.Tasklet) {
			tx := tm.NewTx(t)
			txs[t.ID] = tx
			for j := 0; j < *transfer; j++ {
				from := t.RandN(*accounts)
				to := t.RandN(*accounts)
				amount := uint64(t.RandN(50))
				tx.Atomic(func(tx *pimstm.Tx) {
					f := tx.Read(account(from))
					g := tx.Read(account(to))
					if from == to || f < amount {
						return
					}
					tx.Write(account(from), f-amount)
					tx.Write(account(to), g+amount)
				})
			}
		}
	}
	// The auditor repeatedly sums every balance in a read-only
	// transaction; opacity guarantees it always sees a conserved total.
	progs[*tasklets] = func(t *pimstm.Tasklet) {
		tx := tm.NewTx(t)
		txs[t.ID] = tx
		for j := 0; j < 50; j++ {
			var sum uint64
			tx.Atomic(func(tx *pimstm.Tx) {
				sum = 0
				for i := 0; i < *accounts; i++ {
					sum += tx.Read(account(i))
				}
			})
			if sum != want {
				log.Fatalf("audit %d saw a broken invariant: %d != %d", j, sum, want)
			}
			t.Exec(500)
		}
	}

	cycles, err := d.Run(progs)
	if err != nil {
		log.Fatal(err)
	}

	var total uint64
	for i := 0; i < *accounts; i++ {
		total += d.HostRead64(account(i))
	}
	var st pimstm.Stats
	for _, tx := range txs {
		st.Merge(tx.Stats())
	}
	fmt.Printf("PIM-STM quickstart — %v, metadata in %v\n", alg, tier)
	fmt.Printf("  tasklets:        %d workers + 1 auditor\n", *tasklets)
	fmt.Printf("  transactions:    %d committed, %d aborted (%.1f%% abort rate)\n",
		st.Commits, st.Aborts, st.AbortRate()*100)
	fmt.Printf("  virtual time:    %.3f ms (%d cycles at 350 MHz)\n", d.Seconds(cycles)*1e3, cycles)
	fmt.Printf("  throughput:      %.0f tx/s\n", float64(st.Commits)/d.Seconds(cycles))
	fmt.Printf("  total balance:   %d (expected %d) — invariant %s\n",
		total, want, okString(total == want))
}

func okString(ok bool) string {
	if ok {
		return "preserved ✓"
	}
	return "BROKEN ✗"
}
